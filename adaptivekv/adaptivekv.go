// Package adaptivekv is an in-memory key-value cache whose replacement
// behavior is governed by the paper's adaptive scheme (Subramanian,
// Smaragdakis, Loh — MICRO 2006), lifted from simulation into a live
// concurrent data structure.
//
// The cache is organized as N independent lock-striped shards. Each shard
// is a set-associative array of key-value entries whose replacement
// decisions are delegated to an internal/core decision engine: by default
// SBAR over an LRU/LFU component pair, so a handful of leader sets per
// shard carry shadow directories and miss history while follower sets obey
// the shard's global winner — the Section 4.7 configuration whose
// bookkeeping overhead the paper puts at 0.09–0.16% of cache storage.
// Any component pair (or more) from internal/policy can be substituted,
// as can the full per-set adaptive scheme or a single fixed policy.
//
// Keys are hashed once to 64 bits; the top bits select the shard, the low
// bits the set within the shard, and the full hash is the directory tag.
// Distinct keys whose 64-bit hashes collide are treated as the same cache
// slot: a Set of one overwrites the other (a legal eviction) and a Get of
// the absent one misses. Every such divergence between the engine's view
// (a tag hit) and user-visible behavior (a key miss) is surfaced in
// Stats.HashCollisions. With the default hashers the probability of any
// collision among a million resident keys is below 1e-7.
//
// Get and Set are allocation-free on the hit path; the hot-path regression
// harness (cmd/benchregress) enforces this.
package adaptivekv

import (
	"fmt"
	"sync"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/storage"
)

// Mode selects how a shard's replacement decisions are made.
type Mode string

const (
	// ModeSBAR (the default) runs the set-sampling adaptive variant:
	// leader sets carry the full machinery, follower sets obey the global
	// winner.
	ModeSBAR Mode = "sbar"
	// ModeAdaptive runs the full per-set adaptive scheme (paper Algorithm
	// 1) on every set — the strongest guarantee, the highest overhead.
	ModeAdaptive Mode = "adaptive"
	// ModeSingle pins every set to the first (only) component policy; use
	// it for pure-LRU / pure-LFU baselines.
	ModeSingle Mode = "single"
)

// Config shapes a Cache. Zero values select the defaults noted per field.
type Config struct {
	Shards int // lock stripes; power of two; default 8
	Sets   int // sets per shard; power of two; default 256
	Ways   int // entries per set; default 8

	Mode       Mode     // default ModeSBAR
	Components []string // internal/policy names; default {"LRU", "LFU"}

	// LeaderSets is the number of sampled leader sets per shard in
	// ModeSBAR (default core.DefaultLeaderSets, clamped to Sets).
	LeaderSets int

	// ShadowTagBits stores only the low n bits of each tag in the shadow
	// directories (default 8, the paper's recommendation; negative selects
	// full tags).
	ShadowTagBits int
}

// normalized fills defaults and validates.
func (c Config) normalized() Config {
	if c.Shards == 0 {
		c.Shards = 8
	}
	if c.Sets == 0 {
		c.Sets = 256
	}
	if c.Ways == 0 {
		c.Ways = 8
	}
	if c.Mode == "" {
		c.Mode = ModeSBAR
	}
	if len(c.Components) == 0 {
		if c.Mode == ModeSingle {
			c.Components = []string{"LRU"}
		} else {
			c.Components = []string{"LRU", "LFU"}
		}
	}
	if c.LeaderSets == 0 {
		c.LeaderSets = core.DefaultLeaderSets
	}
	if c.LeaderSets > c.Sets {
		c.LeaderSets = c.Sets
	}
	if c.ShadowTagBits == 0 {
		c.ShadowTagBits = 8
	}
	if c.Shards <= 0 || c.Shards&(c.Shards-1) != 0 {
		panic(fmt.Sprintf("adaptivekv: Shards %d is not a positive power of two", c.Shards))
	}
	if c.Shards > 1<<16 {
		panic(fmt.Sprintf("adaptivekv: Shards %d exceeds 65536", c.Shards))
	}
	if c.Sets <= 0 || c.Sets&(c.Sets-1) != 0 {
		panic(fmt.Sprintf("adaptivekv: Sets %d is not a positive power of two", c.Sets))
	}
	if c.Ways <= 0 {
		panic("adaptivekv: Ways must be positive")
	}
	if c.Mode == ModeSingle && len(c.Components) != 1 {
		panic("adaptivekv: ModeSingle takes exactly one component")
	}
	if c.Mode != ModeSingle && len(c.Components) < 2 {
		panic("adaptivekv: adaptive modes need at least two components")
	}
	return c
}

// buildPolicy constructs one shard's replacement policy.
func (c Config) buildPolicy() cache.Policy {
	switch c.Mode {
	case ModeSingle:
		return policy.MustByName(c.Components[0])()
	case ModeAdaptive, ModeSBAR:
		comps := make([]core.ComponentFactory, len(c.Components))
		for i, name := range c.Components {
			comps[i] = core.ComponentFactory(policy.MustByName(name))
		}
		var opts []core.Option
		if c.ShadowTagBits > 0 {
			opts = append(opts, core.WithShadowTagBits(c.ShadowTagBits))
		}
		if c.Mode == ModeAdaptive {
			return core.NewAdaptive(comps, opts...)
		}
		return core.NewSBAR(comps,
			core.WithLeaderSets(c.LeaderSets),
			core.WithLeaderOptions(opts...))
	default:
		panic(fmt.Sprintf("adaptivekv: unknown mode %q", c.Mode))
	}
}

// Stats is a point-in-time snapshot of one shard's (or the whole cache's)
// operation counters.
type Stats struct {
	Gets       uint64
	GetHits    uint64
	Stores     uint64
	StoreHits  uint64 // updates of an already-resident key
	Deletes    uint64
	DeleteHits uint64
	Evictions  uint64 // capacity evictions decided by the policy
	// PolicySwitches counts SBAR global-winner changes (0 in other modes):
	// how often the shard actually changed its mind about which component
	// policy to imitate.
	PolicySwitches uint64
	// HashCollisions counts operations where the directory matched a tag
	// but the resident entry held a *different* key — a 64-bit hash
	// collision between distinct keys. The operation is reported to the
	// caller as a miss, yet the engine has already recorded a hit and
	// touched the colliding entry's recency/frequency, so engine-level
	// stats diverge from user-visible behavior by exactly this count.
	HashCollisions uint64
}

// Add accumulates o into s (summing per-shard snapshots into a total).
func (s *Stats) Add(o Stats) {
	s.Gets += o.Gets
	s.GetHits += o.GetHits
	s.Stores += o.Stores
	s.StoreHits += o.StoreHits
	s.Deletes += o.Deletes
	s.DeleteHits += o.DeleteHits
	s.Evictions += o.Evictions
	s.PolicySwitches += o.PolicySwitches
	s.HashCollisions += o.HashCollisions
}

// HitRatio returns GetHits/Gets, or 0 for an unused cache.
func (s Stats) HitRatio() float64 {
	if s.Gets == 0 {
		return 0
	}
	return float64(s.GetHits) / float64(s.Gets)
}

// entry is one resident key-value pair.
type entry[K comparable, V any] struct {
	key K
	val V
}

// shard is one lock stripe: a set-associative entry array plus its
// decision engine. The trailing pad keeps two shards' mutexes off one
// cache line.
type shard[K comparable, V any] struct {
	mu      sync.Mutex
	eng     *core.Engine
	entries []entry[K, V] // set*ways+way

	gets, getHits     uint64
	stores, storeHits uint64
	deletes, delHits  uint64
	collisions        uint64
	resident          int // maintained incrementally; see Len

	_ [64]byte
}

// Cache is the sharded adaptive key-value cache. The zero value is not
// usable; construct with New. All methods are safe for concurrent use.
type Cache[K comparable, V any] struct {
	cfg      Config
	shards   []shard[K, V]
	hash     func(K) uint64
	setMask  uint64
	setShift uint
	ways     int
}

// Option configures a Cache at construction.
type Option[K comparable, V any] func(*Cache[K, V])

// WithHasher overrides the key hash function. The hash must be
// deterministic and well-mixed across all 64 bits; New applies no further
// mixing to custom hashers' output beyond its own finalizer.
func WithHasher[K comparable, V any](h func(K) uint64) Option[K, V] {
	return func(c *Cache[K, V]) { c.hash = h }
}

// New builds a cache for the given configuration. It panics on an invalid
// configuration or on a key type with no default hasher (strings and
// integer kinds are built in; other comparable types need WithHasher).
func New[K comparable, V any](cfg Config, opts ...Option[K, V]) *Cache[K, V] {
	cfg = cfg.normalized()
	c := &Cache[K, V]{
		cfg:     cfg,
		shards:  make([]shard[K, V], cfg.Shards),
		setMask: uint64(cfg.Sets - 1),
		ways:    cfg.Ways,
	}
	for s := cfg.Sets; s > 1; s >>= 1 {
		c.setShift++
	}
	for _, o := range opts {
		o(c)
	}
	if c.hash == nil {
		c.hash = hasherFor[K]()
		if c.hash == nil {
			panic(fmt.Sprintf("adaptivekv: no default hasher for key type %T; use WithHasher", *new(K)))
		}
	}
	g := core.EngineGeometry(cfg.Sets, cfg.Ways)
	for i := range c.shards {
		c.shards[i].eng = core.NewEngine(g, cfg.buildPolicy())
		c.shards[i].entries = make([]entry[K, V], cfg.Sets*cfg.Ways)
	}
	return c
}

// locate hashes key to (shard, set, tag). The shard comes from the top
// bits and the set from the bottom bits so the two indices stay
// independent, and — exactly as cache.Cache.decompose does for block
// addresses — the set bits are shifted out of the tag. Keeping them in
// would be harmless for the full-tag directory but fatal for partial
// shadow tags: the adaptive policy masks the tag's low bits, and if those
// repeat the set index, every tag in a set shares them and the shadow
// arrays degenerate into always-hit, starving the selector of signal.
// (set, tag) ↔ h is still a bijection, so key discrimination is unchanged.
func (c *Cache[K, V]) locate(key K) (sh *shard[K, V], set int, tag uint64) {
	h := mix64(c.hash(key))
	sh = &c.shards[(h>>48)&uint64(len(c.shards)-1)]
	return sh, int(h & c.setMask), h >> c.setShift
}

// Get returns the value cached under key. The access updates the adaptive
// machinery (recency, frequency, shadow directories, miss history) but a
// miss does not reserve space: read-through callers populate via Set.
func (c *Cache[K, V]) Get(key K) (V, bool) {
	sh, set, tag := c.locate(key)
	sh.mu.Lock()
	sh.gets++
	if way, ok := sh.eng.Lookup(set, tag); ok {
		e := &sh.entries[set*c.ways+way]
		if e.key == key {
			v := e.val
			sh.getHits++
			sh.mu.Unlock()
			return v, true
		}
		// 64-bit hash collision between distinct keys: a user-visible
		// miss, but the engine has already counted a hit and promoted
		// the colliding entry. Record the divergence.
		sh.collisions++
	}
	sh.mu.Unlock()
	var zero V
	return zero, false
}

// Set caches val under key, updating in place when key is resident and
// otherwise filling per the shard's replacement decision — possibly
// evicting the entry the imitated component policy would evict.
func (c *Cache[K, V]) Set(key K, val V) {
	sh, set, tag := c.locate(key)
	sh.mu.Lock()
	sh.stores++
	res := sh.eng.Store(set, tag)
	e := &sh.entries[set*c.ways+res.Way]
	if res.Hit {
		sh.storeHits++
		if e.key != key {
			// Tag hit on a different key: the store legally overwrites
			// the colliding entry, but the engine saw an in-place update.
			sh.collisions++
		}
	} else if !res.Evicted {
		sh.resident++ // filled a previously invalid way
	}
	e.key = key
	e.val = val
	sh.mu.Unlock()
}

// Delete removes key, reporting whether it was resident. The freed slot
// becomes fill-preferred within its set.
func (c *Cache[K, V]) Delete(key K) bool {
	sh, set, tag := c.locate(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.deletes++
	way, ok := sh.eng.Find(set, tag)
	if !ok {
		return false
	}
	if sh.entries[set*c.ways+way].key != key {
		sh.collisions++ // tag present but owned by a colliding key
		return false
	}
	sh.eng.Delete(set, tag)
	sh.entries[set*c.ways+way] = entry[K, V]{} // release references
	sh.delHits++
	sh.resident--
	return true
}

// Len returns the number of resident entries. Each shard maintains its
// occupancy incrementally (a fill of an invalid way increments, a delete
// hit decrements, an eviction-replace is net zero), so Len takes one
// shard lock at a time and reads a single integer — it never walks sets
// and never holds more than one lock at once, making it safe for
// per-scrape use.
func (c *Cache[K, V]) Len() int {
	n := 0
	for i := range c.shards {
		n += c.ShardOccupancy(i)
	}
	return n
}

// ShardOccupancy returns the number of resident entries in shard i.
func (c *Cache[K, V]) ShardOccupancy(i int) int {
	sh := &c.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.resident
}

// Capacity returns the maximum number of resident entries.
func (c *Cache[K, V]) Capacity() int {
	return c.cfg.Shards * c.cfg.Sets * c.cfg.Ways
}

// Config returns the normalized configuration.
func (c *Cache[K, V]) Config() Config { return c.cfg }

// Shards returns the number of lock stripes.
func (c *Cache[K, V]) Shards() int { return len(c.shards) }

// ShardStats returns a snapshot of shard i's counters.
func (c *Cache[K, V]) ShardStats(i int) Stats {
	sh := &c.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return Stats{
		Gets:           sh.gets,
		GetHits:        sh.getHits,
		Stores:         sh.stores,
		StoreHits:      sh.storeHits,
		Deletes:        sh.deletes,
		DeleteHits:     sh.delHits,
		Evictions:      sh.eng.Stats().Evictions,
		PolicySwitches: sh.eng.PolicySwitches(),
		HashCollisions: sh.collisions,
	}
}

// Stats returns the sum of all shards' counters.
func (c *Cache[K, V]) Stats() Stats {
	var total Stats
	for i := range c.shards {
		total.Add(c.ShardStats(i))
	}
	return total
}

// Winner returns shard i's current SBAR global winner (component index
// into Config.Components), or -1 outside ModeSBAR.
func (c *Cache[K, V]) Winner(i int) int {
	sh := &c.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.eng.Winner()
}

// Overhead returns the adaptive bookkeeping cost of one shard in bits,
// following the paper's SRAM accounting (internal/storage): shadow
// directory entries and history for the sampled sets in ModeSBAR, for
// every set in ModeAdaptive, zero in ModeSingle. OverheadPercent expresses
// it against the shard's conventional (data + main directory) storage —
// the figure the paper reports as 0.09–0.16% for SBAR.
func (c *Cache[K, V]) Overhead() storage.Bits {
	p := storage.DefaultParams(core.EngineGeometry(c.cfg.Sets, c.cfg.Ways))
	switch c.cfg.Mode {
	case ModeSingle:
		return 0
	case ModeAdaptive:
		return p.AdaptiveOverhead(len(c.cfg.Components), c.cfg.ShadowTagBits)
	default:
		return p.SBAROverhead(len(c.cfg.Components), c.cfg.LeaderSets, c.cfg.ShadowTagBits)
	}
}

// OverheadPercent returns Overhead as a percentage of a shard's
// conventional storage.
func (c *Cache[K, V]) OverheadPercent() float64 {
	p := storage.DefaultParams(core.EngineGeometry(c.cfg.Sets, c.cfg.Ways))
	return p.OverheadPercent(c.Overhead())
}
