package adaptivekv

import "unsafe"

// Default key hashing. The requirements are mundane — deterministic, fast,
// allocation-free, well mixed — but the standard library offers no
// non-allocating generic hash below Go 1.24 (hash/maphash.Comparable), so
// strings get FNV-1a and integer kinds get their value, with a splitmix64
// finalizer applied in Cache.locate to spread low-entropy key spaces
// (sequential IDs, short strings) across shard and set bits.

// mix64 is the splitmix64 finalizer: a bijective scramble whose output
// bits each depend on every input bit.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// hashString is 64-bit FNV-1a.
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// castHasher reinterprets a concrete hasher as func(K) uint64. Callers
// guarantee (via the type switch in hasherFor) that K and T are the same
// type, so the function values have identical layout.
func castHasher[K comparable, T any](f func(T) uint64) func(K) uint64 {
	return *(*func(K) uint64)(unsafe.Pointer(&f))
}

// hasherFor returns the built-in hasher for K, or nil when K needs
// WithHasher. The type switch runs once at construction; the returned
// function is monomorphic and allocation-free per call.
func hasherFor[K comparable]() func(K) uint64 {
	var zero K
	switch any(zero).(type) {
	case string:
		return castHasher[K](hashString)
	case int:
		return castHasher[K](func(k int) uint64 { return uint64(k) })
	case int8:
		return castHasher[K](func(k int8) uint64 { return uint64(k) })
	case int16:
		return castHasher[K](func(k int16) uint64 { return uint64(k) })
	case int32:
		return castHasher[K](func(k int32) uint64 { return uint64(k) })
	case int64:
		return castHasher[K](func(k int64) uint64 { return uint64(k) })
	case uint:
		return castHasher[K](func(k uint) uint64 { return uint64(k) })
	case uint8:
		return castHasher[K](func(k uint8) uint64 { return uint64(k) })
	case uint16:
		return castHasher[K](func(k uint16) uint64 { return uint64(k) })
	case uint32:
		return castHasher[K](func(k uint32) uint64 { return uint64(k) })
	case uint64:
		return castHasher[K](func(k uint64) uint64 { return k })
	case uintptr:
		return castHasher[K](func(k uintptr) uint64 { return uint64(k) })
	default:
		return nil
	}
}
