package adaptivekv

// Shard-grouped batch operations. A pipelined server parses a burst of
// requests into one batch and resolves it here with one lock acquisition
// per shard per chunk instead of one per key: in the optimistic
// configuration GetBatch takes each shard's read lock once for its whole
// key group, and SetBatch amortizes the engine lock and the seqlock
// publication window the same way. Results land at the key's index, so
// replies can be emitted in request order regardless of shard grouping.

// batchChunk bounds the keys handled per grouping pass so membership
// fits in one uint64 bitmask; larger batches are processed in chunks.
const batchChunk = 64

// GetBatch looks up keys[i] into vals[i], oks[i]. The slices must have
// equal length (the caller owns and reuses them; GetBatch allocates
// nothing). Each access updates the adaptive machinery exactly as Get
// does — inline under StrictOrder, deferred through the pending ring
// otherwise.
func (c *Cache[K, V]) GetBatch(keys []K, vals []V, oks []bool) {
	if len(vals) != len(keys) || len(oks) != len(keys) {
		panic("adaptivekv: GetBatch slice lengths differ")
	}
	for start := 0; start < len(keys); start += batchChunk {
		end := start + batchChunk
		if end > len(keys) {
			end = len(keys)
		}
		c.getChunk(keys[start:end], vals[start:end], nil, oks[start:end])
	}
}

// GetBatchCas is GetBatch returning, additionally, each hit's cas unique
// into casids[i] (0 on a miss). Each (value, unique) pair is read in one
// coherent window, exactly as GetCas does per key.
func (c *Cache[K, V]) GetBatchCas(keys []K, vals []V, casids []uint64, oks []bool) {
	if len(vals) != len(keys) || len(casids) != len(keys) || len(oks) != len(keys) {
		panic("adaptivekv: GetBatchCas slice lengths differ")
	}
	for start := 0; start < len(keys); start += batchChunk {
		end := start + batchChunk
		if end > len(keys) {
			end = len(keys)
		}
		c.getChunk(keys[start:end], vals[start:end], casids[start:end], oks[start:end])
	}
}

// getChunk resolves one ≤batchChunk key group; casids may be nil when the
// caller has no use for cas uniques.
func (c *Cache[K, V]) getChunk(keys []K, vals []V, casids []uint64, oks []bool) {
	var done uint64
	for i := range keys {
		if done&(1<<uint(i)) != 0 {
			continue
		}
		sh, _, _ := c.locate(keys[i])
		if c.optimistic {
			sh.rmu.RLock()
		} else {
			sh.mu.Lock()
		}
		for j := i; j < len(keys); j++ {
			if done&(1<<uint(j)) != 0 {
				continue
			}
			sh2, set, tag := c.locate(keys[j])
			if sh2 != sh {
				continue
			}
			done |= 1 << uint(j)
			sh.gets.Add(1)
			var id uint64
			if c.optimistic {
				vals[j], id, oks[j] = c.probeShared(sh, set, tag, keys[j])
				sh.fastpath.Add(1)
				if !sh.ring.push(uint32(set), tag) {
					sh.dropped.Add(1)
				}
			} else {
				vals[j], id, oks[j] = c.lookupLocked(sh, set, tag, keys[j])
			}
			if casids != nil {
				casids[j] = id
			}
		}
		if c.optimistic {
			sh.rmu.RUnlock()
			c.maybeDrain(sh)
		} else {
			sh.mu.Unlock()
		}
	}
}

// SetBatch caches vals[i] under keys[i] with Set's exact per-key
// semantics, grouped so each shard's engine lock, ring drain, and
// seqlock publication window are paid once per chunk group rather than
// once per key. Duplicate keys within a batch behave as sequential Sets
// (last value wins).
func (c *Cache[K, V]) SetBatch(keys []K, vals []V) {
	if len(vals) != len(keys) {
		panic("adaptivekv: SetBatch slice lengths differ")
	}
	for start := 0; start < len(keys); start += batchChunk {
		end := start + batchChunk
		if end > len(keys) {
			end = len(keys)
		}
		c.setChunk(keys[start:end], vals[start:end])
	}
}

func (c *Cache[K, V]) setChunk(keys []K, vals []V) {
	var done uint64
	for i := range keys {
		if done&(1<<uint(i)) != 0 {
			continue
		}
		sh, _, _ := c.locate(keys[i])
		sh.mu.Lock()
		c.drainPending(sh)
		// One publication window covers the whole shard group; store and
		// publish interleave per key so in-batch duplicates and collisions
		// see each other exactly as sequential Sets would.
		sh.rmu.Lock()
		sh.seq.Add(1)
		for j := i; j < len(keys); j++ {
			if done&(1<<uint(j)) != 0 {
				continue
			}
			sh2, set, tag := c.locate(keys[j])
			if sh2 != sh {
				continue
			}
			done |= 1 << uint(j)
			sh.stores++
			res := sh.eng.Store(set, tag)
			slot := set*c.ways + res.Way
			if res.Hit {
				switch {
				case c.expiredDeadline(sh.entries[slot].deadline):
					sh.expired++ // overwrote a corpse, not a live entry
				case sh.entries[slot].key != keys[j]:
					sh.storeHits++
					sh.collisions.Add(1)
				default:
					sh.storeHits++
				}
			} else if !res.Evicted {
				sh.resident++
			}
			sh.casSeq++
			sh.entries[slot] = entry[K, V]{key: keys[j], val: vals[j], casid: sh.casSeq}
			sh.rtags[slot].Store(tag<<1 | 1)
		}
		sh.seq.Add(1)
		sh.rmu.Unlock()
		sh.mu.Unlock()
	}
}
