package adaptivekv

// White-box TTL tests. These drive the coarse expiry clock directly
// (c.clock) so lazy-expiry behavior is deterministic; sweeper tests use
// a short SweepInterval and poll instead, exercising the real tick path.

import (
	"testing"
	"time"
)

// advanceClock moves the coarse clock just past the given deadline, as
// a sweeper tick eventually would.
func advanceClock[K comparable, V any](c *Cache[K, V], past int64) {
	c.clock.Store(past + 1)
}

func TestTTLLazyExpiryStrictOrder(t *testing.T) {
	c := New[string, int](Config{Shards: 1, Sets: 8, Ways: 4, StrictOrder: true})
	defer c.Close()

	d := time.Now().Add(time.Hour).UnixNano()
	c.SetTTL("k", 7, d)
	if v, ok := c.Get("k"); !ok || v != 7 {
		t.Fatalf("Get before deadline = (%d, %v), want (7, true)", v, ok)
	}
	advanceClock(c, d)
	if _, ok := c.Get("k"); ok {
		t.Fatal("Get after deadline hit, want miss")
	}
	st := c.Stats()
	if st.Expired != 1 {
		t.Fatalf("Expired = %d, want 1", st.Expired)
	}
	if st.GetHits != 1 {
		t.Fatalf("GetHits = %d, want 1 (expired read must not count as hit)", st.GetHits)
	}
	if c.Len() != 0 {
		t.Fatalf("Len = %d, want 0 after lazy reclaim", c.Len())
	}
	// The slot is genuinely vacant: a second Get is a plain miss with no
	// further Expired accounting.
	if _, ok := c.Get("k"); ok {
		t.Fatal("second Get after expiry hit")
	}
	if st := c.Stats(); st.Expired != 1 {
		t.Fatalf("Expired after second Get = %d, want 1 (exactly-once)", st.Expired)
	}
}

func TestTTLLazyExpiryOptimistic(t *testing.T) {
	c := New[string, int](Config{Shards: 1, Sets: 8, Ways: 4})
	defer c.Close()

	d := time.Now().Add(time.Hour).UnixNano()
	c.SetTTL("k", 7, d)
	if v, ok := c.Get("k"); !ok || v != 7 {
		t.Fatalf("Get before deadline = (%d, %v), want (7, true)", v, ok)
	}
	advanceClock(c, d)
	// Optimistic readers see the corpse as a miss but cannot reclaim it
	// (they hold only rmu); Expired is counted later at reclaim.
	if _, ok := c.Get("k"); ok {
		t.Fatal("optimistic Get after deadline hit, want miss")
	}
	// A write to the same shard drains the pending ring, which vacates
	// the corpse and records the engine miss.
	c.Set("other", 1)
	st := c.Stats()
	if st.Expired != 1 {
		t.Fatalf("Expired = %d, want 1 after drain reclaim", st.Expired)
	}
	if _, ok := c.Get("k"); ok {
		t.Fatal("Get after reclaim hit")
	}
}

func TestTTLGetBatchExpiry(t *testing.T) {
	for _, strict := range []bool{true, false} {
		c := New[string, int](Config{Shards: 2, Sets: 8, Ways: 4, StrictOrder: strict})
		d := time.Now().Add(time.Hour).UnixNano()
		c.SetTTL("dead", 1, d)
		c.SetTTL("live", 2, 0)
		advanceClock(c, d)

		keys := []string{"dead", "live", "missing"}
		vals := make([]int, len(keys))
		oks := make([]bool, len(keys))
		c.GetBatch(keys, vals, oks)
		if oks[0] {
			t.Fatalf("strict=%v: expired key hit in GetBatch", strict)
		}
		if !oks[1] || vals[1] != 2 {
			t.Fatalf("strict=%v: live key = (%d, %v), want (2, true)", strict, vals[1], oks[1])
		}
		if oks[2] {
			t.Fatalf("strict=%v: missing key hit", strict)
		}
		c.Close()
	}
}

func TestTTLSetOverCorpseCountsExpiredNotStoreHit(t *testing.T) {
	c := New[string, int](Config{Shards: 1, Sets: 8, Ways: 4, StrictOrder: true})
	defer c.Close()

	d := time.Now().Add(time.Hour).UnixNano()
	c.SetTTL("k", 1, d)
	advanceClock(c, d)
	c.SetTTL("k", 2, 0) // overwrite the corpse
	st := c.Stats()
	if st.Expired != 1 {
		t.Fatalf("Expired = %d, want 1 (set-over-corpse is the reclaim)", st.Expired)
	}
	if st.StoreHits != 0 {
		t.Fatalf("StoreHits = %d, want 0 (corpse slot was logically vacant)", st.StoreHits)
	}
	if v, ok := c.Get("k"); !ok || v != 2 {
		t.Fatalf("Get after overwrite = (%d, %v), want (2, true)", v, ok)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

func TestTTLDeleteOfCorpse(t *testing.T) {
	c := New[string, int](Config{Shards: 1, Sets: 8, Ways: 4, StrictOrder: true})
	defer c.Close()

	d := time.Now().Add(time.Hour).UnixNano()
	c.SetTTL("k", 1, d)
	advanceClock(c, d)
	if c.Delete("k") {
		t.Fatal("Delete of expired entry = true, want false (value already dead)")
	}
	st := c.Stats()
	if st.Expired != 1 || st.DeleteHits != 0 {
		t.Fatalf("Expired=%d DeleteHits=%d, want 1/0", st.Expired, st.DeleteHits)
	}
	if c.Len() != 0 {
		t.Fatalf("Len = %d, want 0 (delete reclaimed the slot)", c.Len())
	}
}

func TestTTLImmediateExpiry(t *testing.T) {
	c := New[string, int](Config{Shards: 1, Sets: 8, Ways: 4, StrictOrder: true})
	defer c.Close()

	// Deadline 1 is the already-expired sentinel (kvproto.DeadlineNanos
	// for negative exptime): any live coarse clock is past it.
	c.SetTTL("k", 1, 1)
	if _, ok := c.Get("k"); ok {
		t.Fatal("Get of already-expired entry hit")
	}
	if st := c.Stats(); st.Expired != 1 {
		t.Fatalf("Expired = %d, want 1", st.Expired)
	}
}

func TestTTLSweeperReclaims(t *testing.T) {
	c := New[string, int](Config{
		Shards: 2, Sets: 8, Ways: 4, StrictOrder: true,
		SweepInterval: time.Millisecond,
	})
	defer c.Close()

	deadline := time.Now().Add(20 * time.Millisecond).UnixNano()
	for _, k := range []string{"a", "b", "c", "d"} {
		c.SetTTL(k, 1, deadline)
	}
	c.SetTTL("keep", 2, 0)

	deadlineAt := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadlineAt) {
		if st := c.Stats(); st.SweepRemoved == 4 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	st := c.Stats()
	if st.SweepRemoved != 4 || st.Expired != 4 {
		t.Fatalf("SweepRemoved=%d Expired=%d, want 4/4", st.SweepRemoved, st.Expired)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (only the no-TTL entry survives)", c.Len())
	}
	if v, ok := c.Get("keep"); !ok || v != 2 {
		t.Fatalf("no-TTL entry = (%d, %v), want (2, true)", v, ok)
	}
	if c.SweepPasses() == 0 {
		t.Fatal("SweepPasses = 0 after sweeper reclaimed entries")
	}
	// No reads touched the dead keys: the sweeper alone did the
	// accounting, and it never double-counts with the lazy path.
	if _, ok := c.Get("a"); ok {
		t.Fatal("swept key still readable")
	}
	if st := c.Stats(); st.Expired != 4 {
		t.Fatalf("Expired after post-sweep read = %d, want 4", st.Expired)
	}
}

func TestTTLFlushPlusExpiryNoDoubleCount(t *testing.T) {
	c := New[string, int](Config{Shards: 1, Sets: 8, Ways: 4, StrictOrder: true})
	defer c.Close()

	d := time.Now().Add(time.Hour).UnixNano()
	c.SetTTL("dead", 1, d)
	c.SetTTL("live", 2, 0)
	advanceClock(c, d)
	// Flush drops both entries — the corpse leaves as a flushed entry,
	// not as an expiry (nothing observed it dead first).
	if n := c.Flush(); n != 2 {
		t.Fatalf("Flush = %d, want 2", n)
	}
	st := c.Stats()
	if st.Expired != 0 {
		t.Fatalf("Expired = %d, want 0 (flush is not expiry)", st.Expired)
	}
	if c.Len() != 0 {
		t.Fatalf("Len = %d, want 0", c.Len())
	}
}

func TestTTLCloseIdempotent(t *testing.T) {
	c := New[string, int](Config{Shards: 1, Sets: 8, Ways: 4})
	c.SetTTL("k", 1, time.Now().Add(time.Hour).UnixNano())
	c.Close()
	c.Close() // must not panic on double close
	// Cache stays usable after Close (minus active sweeping).
	c.Set("k2", 2)
	if v, ok := c.Get("k2"); !ok || v != 2 {
		t.Fatalf("Get after Close = (%d, %v), want (2, true)", v, ok)
	}
	// Close without ever starting the sweeper is also fine.
	c2 := New[string, int](Config{Shards: 1, Sets: 8, Ways: 4})
	c2.Close()
}

func TestTTLDeadlineAccessor(t *testing.T) {
	c := New[string, int](Config{Shards: 1, Sets: 8, Ways: 4})
	defer c.Close()

	far := time.Now().Add(time.Hour).UnixNano()
	c.SetTTL("ttl", 1, far)
	c.Set("plain", 2)

	if d, ok := c.Deadline("ttl"); !ok || d != far {
		t.Fatalf("Deadline(ttl) = (%d, %v), want (%d, true)", d, ok, far)
	}
	if d, ok := c.Deadline("plain"); !ok || d != 0 {
		t.Fatalf("Deadline(plain) = (%d, %v), want (0, true)", d, ok)
	}
	if _, ok := c.Deadline("missing"); ok {
		t.Fatal("Deadline(missing) = true")
	}
	// Deadline does not record an access.
	if st := c.Stats(); st.Gets != 0 {
		t.Fatalf("Gets after Deadline calls = %d, want 0", st.Gets)
	}
}

func TestTTLNonTTLCachePathsUntouched(t *testing.T) {
	c := New[string, int](Config{Shards: 1, Sets: 8, Ways: 4})
	defer c.Close()
	c.Set("k", 1)
	if c.ttlInUse.Load() {
		t.Fatal("ttlInUse flipped without any TTL store")
	}
	if c.SweepPasses() != 0 {
		t.Fatal("sweeper ran without any TTL store")
	}
	// SetTTL with deadline 0 is exactly Set: still no TTL mode.
	c.SetTTL("k2", 2, 0)
	if c.ttlInUse.Load() {
		t.Fatal("ttlInUse flipped by deadline-0 SetTTL")
	}
}
