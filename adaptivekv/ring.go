package adaptivekv

import "sync/atomic"

// pendingRec is one deferred access record: an optimistic Get observed
// (set, tag) without holding the shard lock, and the decision engine
// still owes that access its recency/frequency/shadow bookkeeping.
// cellSeq is the slot's Vyukov sequence number; the record fields are
// published by the producer's cellSeq release-store and consumed under
// the consumer's acquire-load, so the ring is race-detector-clean
// without any per-record locking.
type pendingRec struct {
	cellSeq atomic.Uint64
	set     uint32
	tag     uint64
}

// pendingRing is a fixed-size multi-producer single-consumer queue of
// pending access records (Dmitry Vyukov's bounded MPMC design, with the
// consumer side serialized by the shard lock). Producers never block: a
// full ring rejects the push and the caller counts a drop. head is
// owned by the single consumer; headPub republishes it so producers can
// estimate occupancy for the ¾-full drain trigger.
type pendingRing struct {
	mask    uint64
	tail    atomic.Uint64 // next slot producers will claim
	headPub atomic.Uint64 // consumer position, republished after drains
	head    uint64        // consumer cursor; guarded by shard.mu
	cells   []pendingRec
}

// newPendingRing builds a ring of size cells; size must be a power of two.
func newPendingRing(size int) *pendingRing {
	r := &pendingRing{mask: uint64(size - 1), cells: make([]pendingRec, size)}
	for i := range r.cells {
		r.cells[i].cellSeq.Store(uint64(i))
	}
	return r
}

// push claims a slot and publishes the record. It reports false — without
// blocking or spinning on the consumer — when the ring is full.
func (r *pendingRing) push(set uint32, tag uint64) bool {
	pos := r.tail.Load()
	for {
		cell := &r.cells[pos&r.mask]
		seq := cell.cellSeq.Load()
		switch {
		case seq == pos:
			if r.tail.CompareAndSwap(pos, pos+1) {
				cell.set, cell.tag = set, tag
				cell.cellSeq.Store(pos + 1)
				return true
			}
			pos = r.tail.Load()
		case seq < pos:
			// The consumer has not recycled this slot: full.
			return false
		default:
			pos = r.tail.Load()
		}
	}
}

// pop consumes one record. Single consumer only (callers hold shard.mu).
// A slot claimed by a producer that has not yet published reads as empty,
// which stalls consumption at that slot until the producer finishes —
// records are never skipped or reordered.
func (r *pendingRing) pop() (set uint32, tag uint64, ok bool) {
	cell := &r.cells[r.head&r.mask]
	if cell.cellSeq.Load() != r.head+1 {
		return 0, 0, false
	}
	set, tag = cell.set, cell.tag
	cell.cellSeq.Store(r.head + r.mask + 1)
	r.head++
	return set, tag, true
}

// occupancy estimates how many records are queued. It races with
// concurrent pushes and drains, which is fine: it only steers the
// best-effort ¾-full drain trigger.
func (r *pendingRing) occupancy() uint64 {
	t, h := r.tail.Load(), r.headPub.Load()
	if t < h {
		return 0
	}
	return t - h
}
