// Package repro is a from-scratch Go reproduction of "Adaptive Caches:
// Effective Shaping of Cache Behavior to Workloads" (Subramanian,
// Smaragdakis, Loh — MICRO 2006).
//
// The library lives under internal/, with one exported subsystem:
//
//   - internal/core — the paper's contribution: adaptive replacement over
//     any N component policies with parallel shadow tag arrays (full or
//     partial tags), per-set miss history, the SBAR set-sampling variant,
//     and the Engine decision API that lifts the scheme out of trace
//     simulation for external stores.
//   - internal/cache, internal/policy, internal/history — the
//     set-associative cache substrate and the standard policies (LRU, LFU,
//     FIFO, MRU, Random).
//   - internal/cpu, internal/branch, internal/mem — the out-of-order
//     timing model standing in for the paper's SimpleScalar/MASE setup.
//   - internal/workload, internal/trace — the 100-program synthetic
//     benchmark suite and the binary trace format.
//   - internal/sim — experiment wiring plus one function per paper figure
//     and table.
//   - internal/kvproto — the memcached-style text protocol spoken by the
//     key-value binaries (get/gets/set/cas/delete/stats/quit), including
//     the reconnecting client with its never-replay-ambiguous-writes
//     contract (ambiguous cas is never replayed at all: a replay could
//     consume its own unique and report a false EXISTS).
//   - internal/kvcluster — the routing tier: seeded consistent-hash ring,
//     per-node connection pools with failure-threshold ejection and probed
//     reintegration, scatter-gather multi-key gets, optional R=2
//     replication (sync-owner writes with best-effort replica fan-out,
//     read failover in ring order, flush-on-reintegrate), node-local cas
//     uniques (cas gates on the sync owner; a unique that survived a
//     failover answers EXISTS, never a lost update), and the kvproto
//     Router served on kvserver's hardened core.
//   - internal/kvserver — the serving layer: protocol loop, batched
//     dispatch, and the reusable Core envelope (accept retry, connection
//     shedding, panic isolation, drain) shared with the router.
//   - internal/fleet — in-process node fleets with kill/restart for chaos
//     drivers and tests; internal/faultnet — seeded network fault
//     injection.
//   - adaptivekv — a sharded concurrent key-value cache whose replacement
//     decisions are made by the adaptive engine (the paper's scheme doing
//     real work, not simulation), with per-entry cas uniques for atomic
//     read-modify-write (GetCas/CompareAndSwap, allocation-free).
//
// The benchmarks in bench_test.go regenerate each figure of the paper's
// evaluation; see EXPERIMENTS.md for paper-vs-measured results and
// DESIGN.md for the system inventory.
//
// Binaries:
//
//   - cmd/adaptsim — run suite benchmarks under a chosen replacement
//     configuration, reporting MPKI/CPI.
//   - cmd/benchtables — regenerate the full paper tables.
//   - cmd/tracegen — emit synthetic traces in the binary trace format.
//   - cmd/benchregress — measure the simulator and adaptivekv hot paths
//     against BENCH_hotpath.json; -check gates regressions in CI.
//   - cmd/verifybound — exhaustively check the 2x worst-case miss bound.
//   - cmd/adaptcached — serve adaptivekv over TCP (memcached-style text
//     protocol) with expvar counters and graceful shutdown.
//   - cmd/kvloadgen — closed-loop load generator replaying
//     internal/workload patterns against adaptcached, a kvrouter, or a
//     fleet via -targets (or in-process with -direct).
//   - cmd/kvrouter — consistent-hash routing proxy over a fleet of
//     adaptcached nodes: one kvproto endpoint, scatter-gather multigets,
//     health ejection and reintegration, -replicas 2 failover.
//   - cmd/kvchaos — seeded single-node chaos soak (fault-injecting
//     listener and proxy, verifying clients) plus the post-soak cas
//     ledger (concurrent gets/cas increments must balance exactly);
//     race-enabled CI gate.
//   - cmd/kvrouterchaos — seeded partition drill for the routing tier:
//     kill and restart a node mid-soak, assert ejection, surviving
//     -keyspace availability, reintegration, and no ambiguous-write
//     replays; -replicas 2 partitions instead and demands zero failed
//     ops plus a flush before reintegration; race-enabled CI gate.
//
// Runnable examples live in examples/.
package repro
