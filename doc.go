// Package repro is a from-scratch Go reproduction of "Adaptive Caches:
// Effective Shaping of Cache Behavior to Workloads" (Subramanian,
// Smaragdakis, Loh — MICRO 2006).
//
// The library lives under internal/:
//
//   - internal/core — the paper's contribution: adaptive replacement over
//     any N component policies with parallel shadow tag arrays (full or
//     partial tags), per-set miss history, and the SBAR set-sampling
//     variant.
//   - internal/cache, internal/policy, internal/history — the
//     set-associative cache substrate and the standard policies (LRU, LFU,
//     FIFO, MRU, Random).
//   - internal/cpu, internal/branch, internal/mem — the out-of-order
//     timing model standing in for the paper's SimpleScalar/MASE setup.
//   - internal/workload, internal/trace — the 100-program synthetic
//     benchmark suite and the binary trace format.
//   - internal/sim — experiment wiring plus one function per paper figure
//     and table.
//
// The benchmarks in bench_test.go regenerate each figure of the paper's
// evaluation; see EXPERIMENTS.md for paper-vs-measured results and
// DESIGN.md for the system inventory. Binaries: cmd/adaptsim,
// cmd/benchtables, cmd/tracegen. Runnable examples live in examples/.
package repro
