// Multicore runs two dissimilar programs against a shared L2 — the
// paper's Section 6 future-work scenario. When one program is
// recency-friendly and the other frequency-friendly, the adaptive shared
// cache resolves the conflict per set and beats either fixed policy.
//
//	go run ./examples/multicore -a lucas -b art-1 -n 4000000
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	var (
		a = flag.String("a", "lucas", "program on core 0")
		b = flag.String("b", "art-1", "program on core 1")
		n = flag.Uint64("n", 4_000_000, "instructions per core")
	)
	flag.Parse()

	sa, err := workload.ByName(*a)
	if err != nil {
		fmt.Fprintln(os.Stderr, "multicore:", err)
		os.Exit(1)
	}
	sb, err := workload.ByName(*b)
	if err != nil {
		fmt.Fprintln(os.Stderr, "multicore:", err)
		os.Exit(1)
	}
	specs := []workload.Spec{sa, sb}

	fmt.Printf("2 cores sharing a 512KB 8-way L2; %d instructions per core\n\n", *n)
	fmt.Printf("%-22s %12s %14s %14s\n", "shared L2 policy", "aggregate", *a+" MPKI", *b+" MPKI")
	for _, p := range []sim.PolicySpec{sim.LRUSpec(), sim.SingleSpec("LFU"), sim.AdaptiveSpec(8)} {
		cfg := sim.Default(p, *n)
		cfg.Warmup = *n / 5
		r := sim.RunMulticoreShared(cfg, specs)
		fmt.Printf("%-22s %12.3f %14.3f %14.3f\n",
			r.Policy, r.MPKI, r.PerCore[0].MPKI, r.PerCore[1].MPKI)
	}
}
