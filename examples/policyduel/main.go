// Policyduel runs an arbitrary pair of replacement policies and their
// adaptive combination across benchmarks, ranking where adaptivity helps
// most — a quick way to explore the design space beyond the paper's
// LRU/LFU default (Section 4.4 evaluates FIFO/MRU and a five-policy mix).
//
//	go run ./examples/policyduel -a LRU -b LFU -bench primary -n 4000000
//	go run ./examples/policyduel -a FIFO -b MRU -bench gcc-1
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	var (
		a     = flag.String("a", "LRU", "first component policy")
		b     = flag.String("b", "LFU", "second component policy")
		bench = flag.String("bench", "primary", "benchmark, 'primary', or 'all'")
		n     = flag.Uint64("n", 4_000_000, "instructions per run")
	)
	flag.Parse()
	for _, name := range []string{*a, *b} {
		if _, err := policy.ByName(name); err != nil {
			fmt.Fprintf(os.Stderr, "policyduel: %v (known: %s)\n",
				err, strings.Join(policy.ExtendedNames(), ", "))
			os.Exit(1)
		}
	}

	var specs []workload.Spec
	switch *bench {
	case "primary":
		for _, name := range workload.PrimaryNames() {
			s, _ := workload.ByName(name)
			specs = append(specs, s)
		}
	case "all":
		specs = workload.Suite()
	default:
		s, err := workload.ByName(*bench)
		if err != nil {
			fmt.Fprintln(os.Stderr, "policyduel:", err)
			os.Exit(1)
		}
		specs = []workload.Spec{s}
	}

	type row struct {
		name             string
		pa, pb, ad, gain float64
	}
	var rows []row
	for _, spec := range specs {
		run := func(p sim.PolicySpec) float64 {
			cfg := sim.Default(p, *n)
			cfg.Warmup = *n / 5
			return sim.RunCacheOnly(cfg, spec).MPKI
		}
		pa := run(sim.SingleSpec(*a))
		pb := run(sim.SingleSpec(*b))
		ad := run(sim.AdaptiveSpec(0, *a, *b))
		best := pa
		if pb < best {
			best = pb
		}
		rows = append(rows, row{spec.Name, pa, pb, ad, stats.PercentReduction(best, ad)})
	}
	// Most-helped first: adaptivity gain vs the better component.
	sort.Slice(rows, func(i, j int) bool { return rows[i].gain > rows[j].gain })

	fmt.Printf("%-14s %10s %10s %10s   %s\n", "benchmark", *a, *b, "adaptive", "vs best component")
	for _, r := range rows {
		fmt.Printf("%-14s %10.2f %10.2f %10.2f   %+6.1f%%\n", r.name, r.pa, r.pb, r.ad, -r.gain)
	}
}
