// Tracefile demonstrates the trace-acquisition workflow: record a
// benchmark's instruction stream to a binary trace file, then re-simulate
// the same file under several replacement policies. Recorded traces make
// policy comparisons exactly reproducible and shareable, the way the
// paper's SimPoint samples were.
//
//	go run ./examples/tracefile
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tracefile:", err)
		os.Exit(1)
	}
}

// readerSource adapts a trace.Reader to the one-pass trace.Source replay
// interface.
type readerSource struct{ r *trace.Reader }

func (s readerSource) Name() string                { return s.r.Name() }
func (s readerSource) Next(rec *trace.Record) bool { return s.r.Read(rec) }
func (s readerSource) Reset()                      { panic("tracefile: one-pass source") }

func run() error {
	const n = 2_000_000
	spec, err := workload.ByName("art-1")
	if err != nil {
		return err
	}

	path := filepath.Join(os.TempDir(), "art-1.trc")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w, err := trace.NewWriter(f, spec.Name)
	if err != nil {
		return err
	}
	src := workload.New(spec, n)
	var rec trace.Record
	for src.Next(&rec) {
		if err := w.Write(&rec); err != nil {
			return err
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	fmt.Printf("recorded %d instructions of %s to %s (%.1f MB)\n\n",
		w.Count(), spec.Name, path, float64(info.Size())/1e6)

	for _, polName := range []string{"LRU", "LFU", "adaptive"} {
		g, err := os.Open(path)
		if err != nil {
			return err
		}
		r, err := trace.NewReader(g)
		if err != nil {
			g.Close()
			return err
		}
		var p sim.PolicySpec
		if polName == "adaptive" {
			p = sim.AdaptiveSpec(8)
		} else {
			p = sim.SingleSpec(polName)
		}
		l2, instrs, err := sim.ReplaySource(sim.Default(p, 1), readerSource{r})
		g.Close()
		if err != nil {
			return err
		}
		fmt.Printf("%-24s L2 MPKI %7.3f  (%d misses)\n",
			p.Label(), stats.MPKI(l2.Misses, instrs), l2.Misses)
	}
	return os.Remove(path)
}
