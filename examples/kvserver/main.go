// Kvserver is the adaptivekv quickstart: build an adaptive key-value
// cache in-process, replay a hostile workload against it and both of its
// component policies run alone, and print the scoreboard. This is the
// paper's central claim at key-value granularity — the adaptive cache
// tracks whichever component suits the traffic, without being told which.
//
//	go run ./examples/kvserver
//	go run ./examples/kvserver -mix loop -n 2000000
//
// For the networked version of the same machinery, run cmd/adaptcached
// and point cmd/kvloadgen (or any memcached text-protocol client) at it.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/adaptivekv"
	"repro/internal/workload"
)

func replay(cfg adaptivekv.Config, mix []workload.Pattern, n int) (*adaptivekv.Cache[uint64, uint64], float64) {
	c := adaptivekv.New[uint64, uint64](cfg)
	ks := workload.NewKeyStream(1, mix)
	for i := 0; i < n; i++ {
		k := ks.Next()
		if _, ok := c.Get(k); !ok {
			c.Set(k, k) // read-through: compute (here: trivially) and fill
		}
	}
	return c, c.Stats().HitRatio()
}

func main() {
	var (
		mixName = flag.String("mix", "zipf", "workload mix: zipf|loop")
		n       = flag.Int("n", 1_000_000, "operations")
	)
	flag.Parse()

	var mix []workload.Pattern
	switch *mixName {
	case "zipf":
		mix = workload.MixedZipf(65536, 0.8)
	case "loop":
		mix = workload.LoopingScan(40000)
	default:
		fmt.Fprintf(os.Stderr, "kvserver: unknown mix %q\n", *mixName)
		os.Exit(1)
	}

	// One geometry, three brains: SBAR-adaptive LRU+LFU versus each
	// component pinned. 8 shards x 1024 sets x 8 ways = 64Ki entries.
	base := adaptivekv.Config{Shards: 8, Sets: 1024, Ways: 8}

	sbarCfg := base
	adaptive, hitA := replay(sbarCfg, mix, *n)

	lruCfg := base
	lruCfg.Mode = adaptivekv.ModeSingle
	lruCfg.Components = []string{"LRU"}
	_, hitL := replay(lruCfg, mix, *n)

	lfuCfg := base
	lfuCfg.Mode = adaptivekv.ModeSingle
	lfuCfg.Components = []string{"LFU"}
	_, hitF := replay(lfuCfg, mix, *n)

	fmt.Printf("workload %s, %d read-through ops, %d-entry cache\n\n",
		*mixName, *n, adaptive.Capacity())
	fmt.Printf("  %-22s hit ratio %.4f\n", "pure LRU", hitL)
	fmt.Printf("  %-22s hit ratio %.4f\n", "pure LFU", hitF)
	fmt.Printf("  %-22s hit ratio %.4f\n\n", "adaptive (SBAR)", hitA)

	st := adaptive.Stats()
	fmt.Printf("adaptive detail: %d evictions, %d policy switches, %.3f%% bookkeeping overhead\n",
		st.Evictions, st.PolicySwitches, adaptive.OverheadPercent())
	for s := 0; s < adaptive.Shards(); s++ {
		if w := adaptive.Winner(s); w >= 0 {
			fmt.Printf("  shard %d settled on %s\n", s, adaptive.Config().Components[w])
		}
	}
}
