// Phasemap reproduces the paper's Figure 7 visualization for any benchmark
// in the suite: which component policy the adaptive cache imitated, per
// cache set, over time. Phase-switching programs such as ammp and mgrid
// show distinct temporal bands and spatial stripes.
//
//	go run ./examples/phasemap -bench ammp -n 6000000
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/sim"
)

func main() {
	var (
		bench  = flag.String("bench", "ammp", "benchmark to map")
		n      = flag.Uint64("n", 6_000_000, "instructions to simulate")
		quanta = flag.Int("quanta", 64, "time quanta (columns)")
		rows   = flag.Int("rows", 32, "downsampled set rows")
	)
	flag.Parse()

	pm, err := sim.Fig7(sim.Options{Instrs: *n}, *bench, *quanta)
	if err != nil {
		fmt.Fprintln(os.Stderr, "phasemap:", err)
		os.Exit(1)
	}
	pm.Render(os.Stdout, *rows, *quanta)

	early := pm.LFUShare(0, *quanta/3)
	late := pm.LFUShare(2**quanta/3, *quanta)
	fmt.Printf("\nLFU share of replacement decisions: first third %.0f%%, last third %.0f%%\n",
		100*early, 100*late)
}
