// Quickstart: build an adaptive LRU/LFU cache, feed it a workload that
// mixes streaming traffic with a frequently reused region, and watch the
// adaptive policy track the better component.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/policy"
)

func main() {
	// The paper's L2: 512KB, 64-byte lines, 8-way.
	geom := cache.Geometry{SizeBytes: 512 << 10, LineBytes: 64, Ways: 8}

	// Three caches over the same geometry: plain LRU, plain LFU, and the
	// adaptive combination with 8-bit partial shadow tags (the paper's
	// recommended +4.0% SRAM configuration).
	lru := cache.New(geom, policy.NewLRU())
	lfu := cache.New(geom, policy.NewLFU(policy.DefaultLFUBits))
	adaptive := core.NewAdaptive(
		[]core.ComponentFactory{
			func() cache.Policy { return policy.NewLRU() },
			func() cache.Policy { return policy.NewLFU(policy.DefaultLFUBits) },
		},
		core.WithShadowTagBits(8),
	)
	adapt := cache.New(geom, adaptive)
	caches := []*cache.Cache{lru, lfu, adapt}

	// Workload: a scan of never-reused blocks (bad for LRU, which caches
	// them; harmless for LFU, which evicts them first) interleaved with a
	// hot region revisited after long gaps (LFU keeps it, LRU forgets).
	const hotBlocks = 6 << 10
	scan := uint64(1 << 24)
	rng := uint64(1)
	for i := 0; i < 12_000_000; i++ {
		var block uint64
		if i%3 != 0 {
			scan++
			block = scan
		} else {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			block = (rng >> 11) % hotBlocks
		}
		addr := cache.Addr(block * 64)
		for _, c := range caches {
			c.Access(addr, false)
		}
		// Touch hot blocks a second time shortly after, so their LFU
		// counts can build (scan blocks never get a second touch).
		if i%3 == 0 {
			for _, c := range caches {
				c.Access(cache.Addr(block*64+8), false)
			}
		}
	}

	fmt.Println("policy            misses      miss ratio")
	for _, c := range caches {
		s := c.Stats()
		fmt.Printf("%-16s %9d         %5.1f%%\n", c.Policy().Name(), s.Misses, 100*s.MissRatio())
	}
	fmt.Println()
	fmt.Println("The adaptive cache should land at (or below) the better component.")
	fmt.Printf("Its per-set miss history currently favors component %d in set 0.\n",
		bestOf(adaptive))
}

func bestOf(a *core.Adaptive) int {
	counts := a.History().Counts(0, make([]int, a.Components()))
	best := 0
	for i, c := range counts {
		if c < counts[best] {
			best = i
		}
	}
	return best
}
